"""Ring-LWE public-key encryption (the LPR scheme).

The basic scheme the paper's introduction motivates: all cost lives in
polynomial multiplications over ``R_q = Z_q[x]/(x^n + 1)``, which is
exactly what CryptoPIM accelerates.  The multiplier backend is pluggable:
pass a :class:`~repro.core.accelerator.CryptoPIM` instance to run every
ring product on the simulated accelerator (and collect its timing/energy
reports), or leave the default software NTT engine.

Scheme (Lyubashevsky-Peikert-Regev):

* keygen:  ``s, e <- chi``;  ``a <- U(R_q)``;  ``b = a*s + e``
* encrypt(m in {0,1}^n): ``r, e1, e2 <- chi``;
  ``u = a*r + e1``;  ``v = b*r + e2 + round(q/2) * m``
* decrypt: ``m_i = 1`` iff ``(v - u*s)_i`` is closer to ``q/2`` than to 0.

Decryption succeeds when the accumulated noise stays below ``q/4``; with
the default CBD(eta=2) noise this holds with overwhelming margin for every
parameter set in :mod:`repro.ntt.params`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..ntt.params import NttParams, params_for_degree
from ..ntt.polynomial import MultiplierBackend, Polynomial
from .sampling import cbd_poly, uniform_poly

__all__ = ["RlwePublicKey", "RlweSecretKey", "RlweCiphertext", "RlweScheme"]


@dataclass(frozen=True)
class RlwePublicKey:
    a: Polynomial
    b: Polynomial


@dataclass(frozen=True)
class RlweSecretKey:
    s: Polynomial


@dataclass(frozen=True)
class RlweCiphertext:
    u: Polynomial
    v: Polynomial


class RlweScheme:
    """LPR public-key encryption over one parameter set.

    Args:
        params: ring parameters (degree picks the paper's modulus).
        backend: ring multiplier; defaults to the software NTT engine, pass
            a CryptoPIM accelerator to simulate hardware execution.
        eta: CBD noise parameter.
        rng: source of randomness (seed it for reproducible tests).
    """

    def __init__(
        self,
        params: NttParams,
        backend: Optional[MultiplierBackend] = None,
        eta: int = 2,
        rng: Optional[np.random.Generator] = None,
    ):
        self.params = params
        self.backend = backend
        self.eta = eta
        self.rng = rng if rng is not None else np.random.default_rng()
        self._half_q = params.q // 2

    @classmethod
    def for_degree(cls, n: int, **kwargs) -> "RlweScheme":
        return cls(params_for_degree(n), **kwargs)

    # -- internals -------------------------------------------------------------

    def _attach(self, poly: Polynomial) -> Polynomial:
        return poly.with_backend(self.backend) if self.backend else poly

    def _noise(self) -> Polynomial:
        return self._attach(cbd_poly(self.params, self.rng, self.eta))

    # -- the scheme ---------------------------------------------------------------

    def keygen(self) -> tuple[RlwePublicKey, RlweSecretKey]:
        a = self._attach(uniform_poly(self.params, self.rng))
        s = self._noise()
        e = self._noise()
        b = a * s + e
        return RlwePublicKey(a=a, b=b), RlweSecretKey(s=s)

    def encrypt(self, pk: RlwePublicKey, message_bits: np.ndarray) -> RlweCiphertext:
        """Encrypt an ``n``-bit message (one bit per coefficient)."""
        bits = np.asarray(message_bits)
        if bits.shape != (self.params.n,):
            raise ValueError(f"message must be {self.params.n} bits")
        if np.any((bits != 0) & (bits != 1)):
            raise ValueError("message entries must be 0 or 1")
        r = self._noise()
        e1 = self._noise()
        e2 = self._noise()
        encoded = Polynomial(bits.astype(np.int64) * self._half_q, self.params)
        u = pk.a * r + e1
        v = pk.b * r + e2 + self._attach(encoded)
        return RlweCiphertext(u=u, v=v)

    def decrypt(self, sk: RlweSecretKey, ct: RlweCiphertext) -> np.ndarray:
        """Recover the message bits by threshold decoding."""
        noisy = ct.v - ct.u * sk.s
        centered = noisy.centered_coeffs()
        # A coefficient encodes 1 when it sits nearer q/2 than 0.
        return (np.abs(centered) > self.params.q // 4).astype(np.int64)

    def decryption_noise(self, sk: RlweSecretKey, ct: RlweCiphertext,
                         message_bits: np.ndarray) -> int:
        """Infinity-norm of the decryption noise (must stay below q/4)."""
        noisy = ct.v - ct.u * sk.s
        encoded = Polynomial(
            np.asarray(message_bits, dtype=np.int64) * self._half_q, self.params
        )
        return (noisy - self._attach(encoded)).infinity_norm()
