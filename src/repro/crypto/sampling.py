"""Samplers for lattice cryptography.

RLWE schemes need three distributions over ``R_q``:

* uniform polynomials (public randomness ``a``);
* small *error/secret* polynomials - we provide the centered binomial
  distribution (CBD) used by NewHope/Kyber and a discrete Gaussian sampled
  through a cumulative distribution table (CDT), the classic constant-time
  hardware approach;
* ternary polynomials (coefficients in ``{-1, 0, 1}``).

All samplers take a ``numpy.random.Generator`` so callers control
determinism - tests and examples pass seeded generators.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..ntt.params import NttParams
from ..ntt.polynomial import Polynomial

__all__ = [
    "uniform_poly",
    "cbd_poly",
    "ternary_poly",
    "DiscreteGaussianSampler",
    "gaussian_poly",
]


def uniform_poly(params: NttParams, rng: np.random.Generator) -> Polynomial:
    """A uniformly random element of ``R_q``."""
    return Polynomial(rng.integers(0, params.q, params.n, dtype=np.int64), params)


def cbd_poly(params: NttParams, rng: np.random.Generator, eta: int = 2) -> Polynomial:
    """Centered binomial distribution ``CBD_eta``: sum of ``eta`` coin
    differences per coefficient; support ``[-eta, eta]``, variance ``eta/2``.

    This is the error distribution of Kyber (eta=2) and NewHope (eta=8).
    """
    if eta < 1:
        raise ValueError("eta must be >= 1")
    ones_a = rng.integers(0, 2, (params.n, eta)).sum(axis=1)
    ones_b = rng.integers(0, 2, (params.n, eta)).sum(axis=1)
    return Polynomial((ones_a - ones_b) % params.q, params)


def ternary_poly(params: NttParams, rng: np.random.Generator,
                 hamming_weight: Optional[int] = None) -> Polynomial:
    """Uniform ternary polynomial; optionally with fixed Hamming weight."""
    if hamming_weight is None:
        coeffs = rng.integers(-1, 2, params.n)
    else:
        if not 0 <= hamming_weight <= params.n:
            raise ValueError("hamming weight out of range")
        coeffs = np.zeros(params.n, dtype=np.int64)
        positions = rng.choice(params.n, size=hamming_weight, replace=False)
        coeffs[positions] = rng.choice([-1, 1], size=hamming_weight)
    return Polynomial(coeffs % params.q, params)


class DiscreteGaussianSampler:
    """Discrete Gaussian over the integers via a cumulative table (CDT).

    The LWE definition samples errors from a (discrete) Gaussian; hardware
    implementations use a precomputed CDT and constant-time table scans.
    The table covers ``[-tail_cut * sigma, +tail_cut * sigma]``; mass beyond
    is below 2^-100 for the default 13-sigma cut.
    """

    def __init__(self, sigma: float, tail_cut: float = 13.0):
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.sigma = sigma
        self.bound = max(1, int(math.ceil(sigma * tail_cut)))
        xs = np.arange(-self.bound, self.bound + 1)
        pdf = np.exp(-(xs.astype(float) ** 2) / (2 * sigma * sigma))
        pdf /= pdf.sum()
        self._xs = xs
        self._cdf = np.cumsum(pdf)

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """``count`` i.i.d. samples as signed integers."""
        u = rng.random(count)
        idx = np.searchsorted(self._cdf, u)
        return self._xs[np.clip(idx, 0, len(self._xs) - 1)]


def gaussian_poly(params: NttParams, rng: np.random.Generator,
                  sigma: float = 3.2) -> Polynomial:
    """Polynomial with discrete-Gaussian coefficients (default sigma per
    the original NewHope/RLWE literature)."""
    sampler = DiscreteGaussianSampler(sigma)
    return Polynomial(sampler.sample(params.n, rng) % params.q, params)
