"""Lattice-cryptography workloads built on the accelerated multiplier."""

from .fo_transform import FoKem, FoSecretKey
from .frodo import FrodoLitePke, key_size_comparison
from .dilithium import DilithiumParams, DilithiumSigner, Signature
from .encoding import (
    bits_to_bytes,
    bytes_to_bits,
    decode_bytes,
    encode_bytes,
    majority_decode,
    spread_bits,
)
from .bfv import BfvCiphertext, BfvScheme, BfvSecretKey
from .bgv import BgvCiphertext, BgvScheme, BgvSecretKey, RelinearizationKey
from .bgv_rns import RnsBgvCiphertext, RnsBgvScheme, RnsRelinKey
from .he_apps import (
    encrypted_dot_product,
    encrypted_poly_eval,
    encrypted_xor_aggregate,
    pack_forward,
    pack_reversed,
)
from .kyber import KyberCiphertext, KyberPke, KyberPublicKey, KyberSecretKey
from .newhope import KEY_BITS, NewHopeCiphertext, NewHopeKem, NewHopePublicKey
from .rlwe import RlweCiphertext, RlwePublicKey, RlweScheme, RlweSecretKey
from .serialization import (
    deserialize_ciphertext,
    deserialize_public_key,
    polynomial_from_bytes,
    polynomial_to_bytes,
    serialize_ciphertext,
    serialize_public_key,
    wire_sizes,
)
from .security import (
    SecurityEstimate,
    estimate_rlwe_security,
    paper_parameter_review,
)
from .sampling import (
    DiscreteGaussianSampler,
    cbd_poly,
    gaussian_poly,
    ternary_poly,
    uniform_poly,
)

__all__ = [name for name in dir() if not name.startswith("_")]
