"""BFV: scale-invariant homomorphic encryption (the SEAL default).

The paper's HE anchor is Microsoft SEAL, whose default scheme is BFV, not
BGV: plaintexts are scaled *up* by ``Delta = floor(q / t)`` at encryption
and multiplications rescale by ``t / q`` with rounding, so no modulus
chain is needed for shallow circuits.  Implementing it alongside BGV lets
the repository compare the two classic noise-management styles on the
same CryptoPIM rings.

Textbook (symmetric) BFV over ``R_q = Z_q[x]/(x^n + 1)``:

* encrypt:  ``c0 = a*s + e + Delta*m``, ``c1 = -a``
* decrypt:  ``m = round(t/q * [c0 + c1*s]_q) mod t``
* add: component-wise
* multiply: tensor the ciphertexts over the *integers* (no wraparound),
  scale each component by ``t/q`` with exact rational rounding, reduce mod
  q - the wide exact intermediate is computed by CRT over an auxiliary
  NTT-prime tower (see ``_exact_negacyclic``);
* relinearize: base-T key switching, as in BGV.

With the paper's single 20-bit modulus and ``t = 2`` one multiplicative
level fits, matching the BGV module; the RNS tower generalises BGV's
depth, BFV here stays single-modulus by design.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log
from typing import List, Optional

import numpy as np

from ..ntt.params import NttParams, params_for_degree
from ..ntt.polynomial import MultiplierBackend, Polynomial
from .sampling import cbd_poly, uniform_poly

__all__ = ["BfvScheme", "BfvCiphertext", "BfvSecretKey"]


@dataclass(frozen=True)
class BfvSecretKey:
    s: Polynomial


@dataclass(frozen=True)
class BfvRelinKey:
    base: int
    b: List[Polynomial]
    a: List[Polynomial]


@dataclass
class BfvCiphertext:
    parts: List[Polynomial]

    @property
    def degree(self) -> int:
        return len(self.parts) - 1


class BfvScheme:
    """Symmetric BFV over one paper ring.

    Args:
        n: ring degree (>= 2048 selects q = 786433).
        t: plaintext modulus (t << q; the single 20-bit modulus supports
            one multiplication at t = 2).
        eta: CBD noise parameter.
        relin_base: digit base for the relinearization keys.
    """

    def __init__(self, n: int = 2048, t: int = 2, eta: int = 2,
                 relin_base: int = 16,
                 backend: Optional[MultiplierBackend] = None,
                 rng: Optional[np.random.Generator] = None):
        self.params: NttParams = params_for_degree(n)
        if not 2 <= t < self.params.q:
            raise ValueError("need 2 <= t < q")
        self.t = t
        self.eta = eta
        self.relin_base = relin_base
        self.backend = backend
        self.rng = rng if rng is not None else np.random.default_rng()
        self.delta = self.params.q // t
        self.relin_digits = int(ceil(log(self.params.q) / log(relin_base)))

    # -- helpers ----------------------------------------------------------------

    def _attach(self, poly: Polynomial) -> Polynomial:
        return poly.with_backend(self.backend) if self.backend else poly

    def _noise(self) -> Polynomial:
        return self._attach(cbd_poly(self.params, self.rng, self.eta))

    # -- keys ----------------------------------------------------------------------

    def keygen(self) -> BfvSecretKey:
        return BfvSecretKey(s=self._noise())

    def relin_keygen(self, sk: BfvSecretKey) -> BfvRelinKey:
        s2 = sk.s * sk.s
        b_parts, a_parts = [], []
        power = 1
        for _ in range(self.relin_digits):
            a_i = self._attach(uniform_poly(self.params, self.rng))
            e_i = self._noise()
            b_i = a_i * sk.s + e_i + s2.scale(power)
            b_parts.append(b_i)
            a_parts.append(a_i)
            power = (power * self.relin_base) % self.params.q
        return BfvRelinKey(base=self.relin_base, b=b_parts, a=a_parts)

    # -- encrypt / decrypt ------------------------------------------------------------

    def encrypt(self, sk: BfvSecretKey, message: np.ndarray) -> BfvCiphertext:
        msg = np.asarray(message) % self.t
        if msg.shape != (self.params.n,):
            raise ValueError(f"plaintext must have {self.params.n} coefficients")
        a = self._attach(uniform_poly(self.params, self.rng))
        e = self._noise()
        scaled = self._attach(Polynomial(
            (msg.astype(np.int64) * self.delta), self.params))
        return BfvCiphertext(parts=[a * sk.s + e + scaled, -a])

    def _phase_centered(self, sk: BfvSecretKey, ct: BfvCiphertext) -> np.ndarray:
        phase = ct.parts[0]
        s_power = sk.s
        for part in ct.parts[1:]:
            phase = phase + part * s_power
            s_power = s_power * sk.s
        return phase.centered_coeffs()

    def decrypt(self, sk: BfvSecretKey, ct: BfvCiphertext) -> np.ndarray:
        phase = self._phase_centered(sk, ct).astype(object)
        q, t = self.params.q, self.t
        # m = round(t * phase / q) mod t, with exact rational rounding
        rounded = [(2 * t * int(p) + q) // (2 * q) for p in phase]
        return np.asarray([r % t for r in rounded], dtype=np.int64)

    def invariant_noise_budget_bits(self, sk: BfvSecretKey,
                                    ct: BfvCiphertext) -> float:
        """SEAL's metric: log2(q / (2t * |noise|)) with noise = distance of
        the phase from the nearest Delta multiple of a message."""
        q, t = self.params.q, self.t
        phase = self._phase_centered(sk, ct)
        worst = 0
        for p in phase:
            # distance to nearest multiple of q/t (rational, scaled by t)
            r = (t * int(p)) % q
            worst = max(worst, min(r, q - r))
        if worst == 0:
            return float(np.log2(q / 2.0))
        return float(np.log2(q / 2.0 / worst))

    # -- homomorphic operations ---------------------------------------------------------

    def add(self, x: BfvCiphertext, y: BfvCiphertext) -> BfvCiphertext:
        longest, shortest = (x, y) if len(x.parts) >= len(y.parts) else (y, x)
        parts = list(longest.parts)
        for i, part in enumerate(shortest.parts):
            parts[i] = parts[i] + part
        return BfvCiphertext(parts=parts)

    def multiply(self, x: BfvCiphertext, y: BfvCiphertext) -> BfvCiphertext:
        """Tensor over the integers, rescale by t/q, round, reduce mod q.

        The intermediate products are exact because BFV's rounding must
        see values *before* any mod-q wraparound; exactness comes from an
        auxiliary CRT tower wide enough for |coefficients| < n*(q/2)^2.
        """
        return self.multiply_many([(x, y)])[0]

    def multiply_many(self, pairs) -> List[BfvCiphertext]:
        """Rescaled tensor products of many ciphertext pairs at once.

        Every pair's exact cross products share one
        :meth:`_exact_negacyclic_many` invocation (one batched kernel
        call per auxiliary CRT prime), the batch-window shape the serving
        layer dispatches.  Bit-identical to per-pair :meth:`multiply`.
        """
        q, t, n = self.params.q, self.t, self.params.n
        pairs = list(pairs)
        flat = []
        index_sets = []
        for x, y in pairs:
            x_c = [p.centered_coeffs() for p in x.parts]
            y_c = [p.centered_coeffs() for p in y.parts]
            index_pairs = [(i, j)
                           for i in range(len(x_c)) for j in range(len(y_c))]
            index_sets.append((len(x_c), len(y_c), index_pairs))
            flat.extend((x_c[i], y_c[j]) for i, j in index_pairs)
        products = iter(self._exact_negacyclic_many(flat))
        out = []
        for x_len, y_len, index_pairs in index_sets:
            out_len = x_len + y_len - 1
            tensored = [[0] * n for _ in range(out_len)]
            for i, j in index_pairs:
                row = tensored[i + j]
                prod = next(products)
                for k in range(n):
                    row[k] += prod[k]
            parts = []
            for row in tensored:
                rounded = [((2 * t * v + q) // (2 * q)) % q for v in row]
                parts.append(self._attach(Polynomial(
                    np.asarray(rounded, dtype=np.int64), self.params)))
            out.append(BfvCiphertext(parts=parts))
        return out

    def _aux(self):
        """The auxiliary CRT tower wide enough for |coeffs| < n*(q/2)^2."""
        from ..ntt.rns import RnsBasis

        if not hasattr(self, "_aux_basis"):
            bound = 2 * self.params.n * (self.params.q // 2) ** 2
            levels = 1
            while True:
                basis = RnsBasis.generate(self.params.n, levels, bits=24)
                if basis.modulus > 2 * bound:
                    break
                levels += 1
            self._aux_basis = basis
        return self._aux_basis

    def _exact_negacyclic(self, a: np.ndarray, b: np.ndarray) -> List[int]:
        """Exact integer negacyclic product of two centered vectors."""
        return self._exact_negacyclic_many([(a, b)])[0]

    def _exact_negacyclic_many(self, pairs) -> List[List[int]]:
        """Exact integer negacyclic products of centered vector pairs.

        Computed with NTTs over an auxiliary CRT tower wide enough to
        avoid any wraparound (|result| < n * (q/2)^2), then reconstructed
        centered - exactness is what lets the t/q rounding be performed on
        true integers.  All pairs share one batched kernel call per
        tower prime.
        """
        from ..ntt.rns import RnsPolynomial

        basis = self._aux()
        pa = [RnsPolynomial.from_integers(basis, [int(v) for v in a])
              for a, _ in pairs]
        pb = [RnsPolynomial.from_integers(basis, [int(v) for v in b])
              for _, b in pairs]
        return [p.to_centered()
                for p in RnsPolynomial.multiply_pairs(list(zip(pa, pb)))]

    def relinearize(self, ct: BfvCiphertext, rlk: BfvRelinKey) -> BfvCiphertext:
        if ct.degree != 2:
            raise ValueError("relinearization expects a degree-2 ciphertext")
        c0, c1, c2 = ct.parts
        coeffs = c2.coeffs.astype(np.int64)
        new0, new1 = c0, c1
        for i in range(self.relin_digits):
            digit = (coeffs // (self.relin_base ** i)) % self.relin_base
            digit_poly = self._attach(Polynomial(digit, self.params))
            new0 = new0 + digit_poly * rlk.b[i]
            new1 = new1 - digit_poly * rlk.a[i]
        return BfvCiphertext(parts=[new0, new1])
