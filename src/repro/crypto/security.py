"""Coarse LWE/RLWE security estimation for the parameter sets.

A hardware paper inherits its parameters' security from the schemes it
cites; a reproduction should still be able to sanity-check them.  This
module implements the classic *root-Hermite-factor* estimate (Gama-Nguyen
delta + the Lindner-Peikert BKZ runtime rule):

* a (R)LWE instance with dimension ``n``, modulus ``q`` and Gaussian-like
  error width ``sigma`` resists distinguishing attacks roughly while the
  attacker cannot reach lattice vectors of length ``q / sigma * sqrt(ln(1/eps)/pi)``;
* achieving root-Hermite factor ``delta`` costs
  ``log2(T) = 1.8 / log2(delta) - 110`` seconds-scale operations
  (Lindner-Peikert 2011, eq. 3).

These are *ballpark* numbers - the community's lattice-estimator has long
superseded them - but they order parameter sets correctly and flag broken
choices, which is what the tests use them for.  CBD(eta) noise enters via
its standard deviation ``sqrt(eta / 2)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log, log2, pi, sqrt

from ..ntt.params import params_for_degree

__all__ = ["SecurityEstimate", "required_hermite_factor",
           "bkz_cost_bits", "estimate_rlwe_security", "paper_parameter_review"]

#: distinguishing advantage targeted by the attack model
DEFAULT_EPSILON = 2 ** -64


@dataclass(frozen=True)
class SecurityEstimate:
    """Outcome of one estimate."""

    n: int
    q: int
    sigma: float
    delta: float
    bits: float

    @property
    def broken(self) -> bool:
        """delta >= 1.0219 is reachable by plain LLL: no security at all."""
        return self.delta >= 1.0219

    def __str__(self) -> str:
        status = "BROKEN (LLL range)" if self.broken else f"~{self.bits:.0f} bits"
        return (f"RLWE(n={self.n}, q={self.q}, sigma={self.sigma:.2f}): "
                f"delta={self.delta:.5f} -> {status}")


def required_hermite_factor(n: int, q: int, sigma: float,
                            epsilon: float = DEFAULT_EPSILON) -> float:
    """The delta an attacker must reach to distinguish with advantage eps.

    Lindner-Peikert: the distinguishing attack needs a vector of length
    ``alpha * q / sigma_s`` where ``alpha = sqrt(ln(1/eps)/pi)``; in an
    m-dimensional q-ary lattice the best reachable length is
    ``2^(2 sqrt(n log2 q log2 delta))`` ... solving for delta:

        log2(delta) = (log2(beta))^2 / (4 n log2 q),
        beta = q / sigma * sqrt(ln(1/eps) / pi)
    """
    if n < 1 or q < 2 or sigma <= 0:
        raise ValueError("invalid LWE parameters")
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must be in (0, 1)")
    beta = (q / sigma) * sqrt(log(1 / epsilon) / pi)
    if beta <= 1:
        return float("inf")  # error swamps the modulus: trivially secure
    log_delta = (log2(beta) ** 2) / (4.0 * n * log2(q))
    return 2.0 ** log_delta


def bkz_cost_bits(delta: float) -> float:
    """Lindner-Peikert BKZ runtime rule: log2(seconds) = 1.8/log2(delta)
    - 110; returned as a bit-operations-style count (clamped at 0)."""
    if delta <= 1.0:
        return float("inf")
    return max(0.0, 1.8 / log2(delta) - 110.0)


def estimate_rlwe_security(n: int, q: int, sigma: float,
                           epsilon: float = DEFAULT_EPSILON) -> SecurityEstimate:
    delta = required_hermite_factor(n, q, sigma, epsilon)
    return SecurityEstimate(n=n, q=q, sigma=sigma, delta=delta,
                            bits=bkz_cost_bits(delta))


def paper_parameter_review(eta: int = 2) -> dict:
    """Estimate every paper ring with CBD(eta) noise.

    Historical context the numbers reproduce: Kyber round-1 (n=256,
    q=7681) and NewHope (n=1024, q=12289) target >100-bit security, while
    a *single* 20-bit prime at n=2048 (the SEAL evaluation modulus) is
    comfortable, and small-n/large-q combinations visibly degrade.
    """
    sigma = sqrt(eta / 2)
    review = {}
    for n in (256, 512, 1024, 2048, 4096, 8192, 16384, 32768):
        p = params_for_degree(n)
        review[n] = estimate_rlwe_security(n, p.q, sigma)
    return review
