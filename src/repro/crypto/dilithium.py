"""Dilithium-style lattice signatures (Fiat-Shamir with aborts, simplified).

Digital signatures are the other half of the NIST post-quantum portfolio
the paper's introduction motivates; CRYSTALS-Dilithium works over
``Z_q[x]/(x^256 + 1)`` with ``q = 8380417 = 2^23 - 2^13 + 1`` - another
NTT-friendly prime, and another ring CryptoPIM's generalised shift-add
reductions handle out of the box (see the generalised-Algorithm-3 property
tests).  Signing is NTT-bound: every attempt computes the matrix-vector
product ``A y`` (``k * l`` ring multiplications), so the accelerator is
again the hot loop.

Simplifications vs the standardised scheme (this is a workload, not a
production signer): no public-key compression (t is published in full, so
no hint mechanism is needed), and the signer's second rejection check
verifies ``HighBits(w - c s2) == HighBits(w)`` directly - the condition
the standard's low-bits bound exists to guarantee - which sidesteps the
decomposition border cases while preserving both the abort loop and the
verification equation ``HighBits(A z - c t) == HighBits(w)``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..ntt.modmath import nth_root_of_unity
from ..ntt.params import NttParams
from ..ntt.polynomial import MultiplierBackend, Polynomial

__all__ = ["DilithiumParams", "DilithiumSigner", "Signature"]

#: the Dilithium prime: 2^23 - 2^13 + 1 (supports 512-th roots: 2^13 | q-1)
DILITHIUM_Q = 8380417


@dataclass(frozen=True)
class DilithiumParams:
    """Scheme parameters (defaults shrunk from Dilithium2 for simulation
    speed while keeping every mechanism intact)."""

    n: int = 256
    q: int = DILITHIUM_Q
    k: int = 2          # rows of A
    l: int = 2          # columns of A
    eta: int = 2        # secret coefficient bound
    tau: int = 39       # challenge Hamming weight
    gamma1: int = 1 << 17  # mask range
    gamma2: int = (DILITHIUM_Q - 1) // 88  # decomposition step

    @property
    def beta(self) -> int:
        """Worst-case ||c * s||_inf given tau and eta."""
        return self.tau * self.eta


@dataclass(frozen=True)
class DilithiumPublicKey:
    matrix: List[List[Polynomial]]  # A (k x l)
    t: List[Polynomial]


@dataclass(frozen=True)
class DilithiumSecretKey:
    s1: List[Polynomial]
    s2: List[Polynomial]


@dataclass(frozen=True)
class Signature:
    z: List[Polynomial]
    challenge_seed: bytes
    attempts: int  # abort-loop iterations (diagnostic)


class DilithiumSigner:
    """Key generation, signing and verification."""

    def __init__(self, params: Optional[DilithiumParams] = None,
                 backend: Optional[MultiplierBackend] = None,
                 rng: Optional[np.random.Generator] = None):
        self.params = params if params is not None else DilithiumParams()
        p = self.params
        if p.n & (p.n - 1) or (p.q - 1) % (2 * p.n) != 0:
            raise ValueError("ring does not support a negacyclic NTT")
        phi = nth_root_of_unity(2 * p.n, p.q)
        self.ring = NttParams(n=p.n, q=p.q, bitwidth=max(16, p.q.bit_length()),
                              w=pow(phi, 2, p.q), phi=phi)
        self.backend = backend
        self.rng = rng if rng is not None else np.random.default_rng()

    # -- helpers ---------------------------------------------------------------

    def _attach(self, poly: Polynomial) -> Polynomial:
        return poly.with_backend(self.backend) if self.backend else poly

    def _poly(self, coeffs: np.ndarray) -> Polynomial:
        return self._attach(Polynomial(coeffs % self.ring.q, self.ring))

    def _uniform(self) -> Polynomial:
        return self._poly(self.rng.integers(0, self.ring.q, self.ring.n))

    def _small(self, bound: int) -> Polynomial:
        return self._poly(self.rng.integers(-bound, bound + 1, self.ring.n))

    def _matvec(self, matrix: List[List[Polynomial]],
                vector: List[Polynomial]) -> List[Polynomial]:
        out = []
        for row in matrix:
            acc = self._attach(Polynomial.zero(self.ring))
            for entry, v in zip(row, vector):
                acc = acc + entry * v
            out.append(acc)
        return out

    def _high_bits(self, poly: Polynomial) -> np.ndarray:
        """Coefficient-wise high part of the centered representative."""
        alpha = 2 * self.params.gamma2
        centered = poly.centered_coeffs()
        low = ((centered + self.params.gamma2) % alpha) - self.params.gamma2
        return ((centered - low) // alpha).astype(np.int64)

    def _challenge(self, message: bytes, w1: List[np.ndarray]) -> Tuple[bytes, Polynomial]:
        """Fiat-Shamir challenge: tau +-1 coefficients from H(message, w1)."""
        hasher = hashlib.sha256()
        hasher.update(message)
        for part in w1:
            hasher.update(part.astype(np.int64).tobytes())
        seed = hasher.digest()
        return seed, self._challenge_from_seed(seed)

    def _challenge_from_seed(self, seed: bytes) -> Polynomial:
        stream = np.random.default_rng(list(seed))
        coeffs = np.zeros(self.ring.n, dtype=np.int64)
        positions = stream.choice(self.ring.n, size=self.params.tau,
                                  replace=False)
        coeffs[positions] = stream.choice([-1, 1], size=self.params.tau)
        return self._poly(coeffs)

    # -- the scheme ----------------------------------------------------------------

    def keygen(self) -> Tuple[DilithiumPublicKey, DilithiumSecretKey]:
        p = self.params
        matrix = [[self._uniform() for _ in range(p.l)] for _ in range(p.k)]
        s1 = [self._small(p.eta) for _ in range(p.l)]
        s2 = [self._small(p.eta) for _ in range(p.k)]
        t = [wi + s2i for wi, s2i in zip(self._matvec(matrix, s1), s2)]
        return DilithiumPublicKey(matrix=matrix, t=t), DilithiumSecretKey(s1=s1, s2=s2)

    def sign(self, sk: DilithiumSecretKey, pk: DilithiumPublicKey,
             message: bytes, max_attempts: int = 1000) -> Signature:
        p = self.params
        for attempt in range(1, max_attempts + 1):
            y = [self._small(p.gamma1 - 1) for _ in range(p.l)]
            w = self._matvec(pk.matrix, y)
            w1 = [self._high_bits(wi) for wi in w]
            seed, c = self._challenge(message, w1)
            z = [yi + c * s1i for yi, s1i in zip(y, sk.s1)]
            # rejection 1: z must not leak s1
            if max(zi.infinity_norm() for zi in z) >= p.gamma1 - p.beta:
                continue
            # rejection 2: the verifier's reconstruction must round the
            # same way (see module docstring)
            w_minus = [wi - c * s2i for wi, s2i in zip(w, sk.s2)]
            if any(not np.array_equal(self._high_bits(a), b)
                   for a, b in zip(w_minus, w1)):
                continue
            return Signature(z=z, challenge_seed=seed, attempts=attempt)
        raise RuntimeError("signing failed to converge (raise max_attempts)")

    def verify(self, pk: DilithiumPublicKey, message: bytes,
               signature: Signature) -> bool:
        p = self.params
        if len(signature.z) != p.l:
            return False
        if max(zi.infinity_norm() for zi in signature.z) >= p.gamma1 - p.beta:
            return False
        c = self._challenge_from_seed(signature.challenge_seed)
        az = self._matvec(pk.matrix, signature.z)
        reconstructed = [azi - c * ti for azi, ti in zip(az, pk.t)]
        w1 = [self._high_bits(ri) for ri in reconstructed]
        hasher = hashlib.sha256()
        hasher.update(message)
        for part in w1:
            hasher.update(part.astype(np.int64).tobytes())
        return hasher.digest() == signature.challenge_seed

    def multiplications_per_attempt(self) -> int:
        """Ring products per signing attempt: ``k*l`` for A*y plus ``l``
        for c*s1 plus ``k`` for c*s2."""
        p = self.params
        return p.k * p.l + p.l + p.k
