"""Fujisaki-Okamoto transform: CPA-secure PKE -> CCA-secure KEM.

The NIST schemes the paper cites (Kyber, NewHope) do not ship their CPA
cores bare: a Fujisaki-Okamoto (FO) transform wraps them into
IND-CCA-secure KEMs by derandomising encryption from a hashed seed and
re-encrypting on decapsulation to detect tampering (with *implicit
rejection* - a tampered ciphertext yields a pseudorandom key rather than
an error oracle).

This module applies the transform generically over this package's
:class:`~repro.crypto.rlwe.RlweScheme`: another protocol layer whose cost
is still dominated by the ring multiplications CryptoPIM accelerates (one
decapsulation = decrypt + full re-encryption = 3 products).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..ntt.params import params_for_degree
from ..ntt.polynomial import MultiplierBackend
from .rlwe import RlweCiphertext, RlwePublicKey, RlweScheme, RlweSecretKey

__all__ = ["FoKem", "FoSecretKey"]


@dataclass(frozen=True)
class FoSecretKey:
    inner: RlweSecretKey
    public: RlwePublicKey
    reject_seed: bytes  # implicit-rejection secret ``z``


class FoKem:
    """FO-transformed RLWE KEM.

    * encaps: sample message m; (K, coins) = G(m, pk); ct = Enc(pk, m; coins)
    * decaps: m' = Dec(sk, ct); re-encrypt with G(m', pk)'s coins; if the
      ciphertext matches, return K', else return H(z, ct) - implicit
      rejection.
    """

    def __init__(self, n: int = 256,
                 backend: Optional[MultiplierBackend] = None,
                 rng: Optional[np.random.Generator] = None):
        self.params = params_for_degree(n)
        self.backend = backend
        self.rng = rng if rng is not None else np.random.default_rng()

    # -- hashing helpers ------------------------------------------------------

    @staticmethod
    def _hash(*parts: bytes) -> bytes:
        hasher = hashlib.sha256()
        for part in parts:
            hasher.update(len(part).to_bytes(4, "little"))
            hasher.update(part)
        return hasher.digest()

    @staticmethod
    def _pk_bytes(pk: RlwePublicKey) -> bytes:
        return (np.asarray(pk.a.coeffs).tobytes()
                + np.asarray(pk.b.coeffs).tobytes())

    def _derive(self, message: np.ndarray,
                pk: RlwePublicKey) -> Tuple[bytes, int]:
        """(shared key, deterministic coin seed) = G(m, pk)."""
        digest = self._hash(message.astype(np.int64).tobytes(),
                            self._pk_bytes(pk))
        key = self._hash(b"key", digest)
        coins = int.from_bytes(self._hash(b"coins", digest)[:8], "little")
        return key, coins

    def _deterministic_encrypt(self, pk: RlwePublicKey,
                               message: np.ndarray,
                               coins: int) -> RlweCiphertext:
        scheme = RlweScheme(self.params, backend=self.backend,
                            rng=np.random.default_rng(coins))
        return scheme.encrypt(pk, message)

    # -- the KEM ------------------------------------------------------------------

    def keygen(self) -> Tuple[RlwePublicKey, FoSecretKey]:
        scheme = RlweScheme(self.params, backend=self.backend, rng=self.rng)
        pk, sk = scheme.keygen()
        reject_seed = self.rng.bytes(32)
        return pk, FoSecretKey(inner=sk, public=pk, reject_seed=reject_seed)

    def encapsulate(self, pk: RlwePublicKey) -> Tuple[RlweCiphertext, bytes]:
        message = self.rng.integers(0, 2, self.params.n)
        key, coins = self._derive(message, pk)
        return self._deterministic_encrypt(pk, message, coins), key

    def decapsulate(self, sk: FoSecretKey, ct: RlweCiphertext) -> bytes:
        scheme = RlweScheme(self.params, backend=self.backend, rng=self.rng)
        message = scheme.decrypt(sk.inner, ct)
        key, coins = self._derive(message, sk.public)
        reencrypted = self._deterministic_encrypt(sk.public, message, coins)
        matches = (np.array_equal(reencrypted.u.coeffs, ct.u.coeffs)
                   and np.array_equal(reencrypted.v.coeffs, ct.v.coeffs))
        if matches:
            return key
        # implicit rejection: pseudorandom, independent of the real key
        return self._hash(b"reject", sk.reject_seed,
                          np.asarray(ct.u.coeffs).tobytes(),
                          np.asarray(ct.v.coeffs).tobytes())
