"""Message encodings between bytes, bits and ring plaintexts.

The schemes in this package encrypt *bit vectors* (one bit per
coefficient).  Real applications hold byte strings; these helpers map
between the two, with explicit capacity accounting, plus a simple
redundancy encoding that spreads each bit over several coefficients for
majority decoding (the same trick NewHope uses for its shared key).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bytes_to_bits",
    "bits_to_bytes",
    "message_capacity_bytes",
    "encode_bytes",
    "decode_bytes",
    "spread_bits",
    "majority_decode",
]


def bytes_to_bits(data: bytes) -> np.ndarray:
    """Little-endian-bit expansion of a byte string."""
    if not data:
        return np.zeros(0, dtype=np.int64)
    as_array = np.frombuffer(data, dtype=np.uint8)
    bits = np.unpackbits(as_array, bitorder="little")
    return bits.astype(np.int64)


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Inverse of :func:`bytes_to_bits`; length must be a multiple of 8."""
    bits = np.asarray(bits)
    if len(bits) % 8:
        raise ValueError("bit vector length must be a multiple of 8")
    if np.any((bits != 0) & (bits != 1)):
        raise ValueError("bit vector entries must be 0 or 1")
    return np.packbits(bits.astype(np.uint8), bitorder="little").tobytes()


def message_capacity_bytes(n: int) -> int:
    """Bytes one degree-``n`` bit-per-coefficient plaintext can hold,
    reserving one coefficient group of 8 bits for the length byte... no:
    capacity is simply n/8 bytes; callers manage framing."""
    return n // 8


def encode_bytes(data: bytes, n: int) -> np.ndarray:
    """Pack a byte string into an ``n``-bit message with length framing.

    Layout: 16 length bits (little-endian byte count) + payload bits +
    zero padding.  Raises if the payload does not fit.
    """
    payload_bits = bytes_to_bits(data)
    length_bits = bytes_to_bits(len(data).to_bytes(2, "little"))
    needed = len(length_bits) + len(payload_bits)
    if needed > n:
        raise ValueError(
            f"{len(data)} bytes need {needed} bits but the ring offers {n}"
        )
    message = np.zeros(n, dtype=np.int64)
    message[: len(length_bits)] = length_bits
    message[len(length_bits) : needed] = payload_bits
    return message


def decode_bytes(message: np.ndarray) -> bytes:
    """Inverse of :func:`encode_bytes`."""
    message = np.asarray(message)
    length = int.from_bytes(bits_to_bytes(message[:16]), "little")
    start = 16
    stop = start + 8 * length
    if stop > len(message):
        raise ValueError("length prefix exceeds message capacity")
    return bits_to_bytes(message[start:stop])


def spread_bits(bits: np.ndarray, factor: int) -> np.ndarray:
    """Repeat each bit ``factor`` times (error-tolerant encoding)."""
    if factor < 1:
        raise ValueError("spread factor must be >= 1")
    return np.repeat(np.asarray(bits), factor)


def majority_decode(spread: np.ndarray, factor: int) -> np.ndarray:
    """Majority-vote decoding of :func:`spread_bits` output."""
    spread = np.asarray(spread)
    if factor < 1 or len(spread) % factor:
        raise ValueError("length must be a multiple of the spread factor")
    votes = spread.reshape(-1, factor).sum(axis=1)
    return (2 * votes > factor).astype(np.int64)
