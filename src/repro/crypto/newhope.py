"""NewHope-style key encapsulation (simplified).

NewHope [16] is the RLWE key-agreement scheme whose parameters
(n=512/1024, q=12289) fix CryptoPIM's 16-bit operating points.  This is
the "NewHope-Simple" encode/decode variant: the shared key is encrypted
bit-wise like an LPR plaintext instead of using the original two-bit
reconciliation, trading a little bandwidth for a much simpler (and easier
to verify) decoder.  Each of the 256 key bits is spread over ``n/256``
coefficients and decoded by majority, which drives the failure probability
to negligible levels.

The heavy operations - four ring multiplications per encapsulation - run
on the pluggable multiplier backend, i.e. on CryptoPIM when one is passed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..ntt.params import NttParams, params_for_degree
from ..ntt.polynomial import MultiplierBackend, Polynomial
from .sampling import cbd_poly, uniform_poly

__all__ = ["NewHopeKem", "NewHopePublicKey", "NewHopeCiphertext", "KEY_BITS"]

#: shared-secret size (NewHope targets a 256-bit key)
KEY_BITS = 256


@dataclass(frozen=True)
class NewHopePublicKey:
    a: Polynomial
    b: Polynomial


@dataclass(frozen=True)
class NewHopeSecretKey:
    s: Polynomial


@dataclass(frozen=True)
class NewHopeCiphertext:
    u: Polynomial
    v: Polynomial


class NewHopeKem:
    """Simplified NewHope KEM over n in {512, 1024}, q = 12289."""

    def __init__(self, n: int = 1024, eta: int = 8,
                 backend: Optional[MultiplierBackend] = None,
                 rng: Optional[np.random.Generator] = None):
        if n < KEY_BITS or n % KEY_BITS:
            raise ValueError(f"n must be a multiple of {KEY_BITS}")
        self.params: NttParams = params_for_degree(n)
        self.eta = eta
        self.backend = backend
        self.rng = rng if rng is not None else np.random.default_rng()
        self._spread = n // KEY_BITS
        self._half_q = self.params.q // 2

    def _attach(self, poly: Polynomial) -> Polynomial:
        return poly.with_backend(self.backend) if self.backend else poly

    def _noise(self) -> Polynomial:
        return self._attach(cbd_poly(self.params, self.rng, self.eta))

    def _encode_key(self, key_bits: np.ndarray) -> Polynomial:
        """Spread each key bit over ``n/256`` coefficients at q/2."""
        coeffs = np.repeat(key_bits.astype(np.int64), self._spread) * self._half_q
        return self._attach(Polynomial(coeffs, self.params))

    def _decode_key(self, noisy: Polynomial) -> np.ndarray:
        """Majority-vote each key bit from its coefficient group."""
        centered = np.abs(noisy.centered_coeffs())
        votes = (centered > self.params.q // 4).reshape(KEY_BITS, self._spread)
        return (votes.sum(axis=1) * 2 > self._spread).astype(np.int64)

    # -- KEM interface ------------------------------------------------------

    def keygen(self) -> tuple[NewHopePublicKey, NewHopeSecretKey]:
        a = self._attach(uniform_poly(self.params, self.rng))
        s = self._noise()
        e = self._noise()
        return NewHopePublicKey(a=a, b=a * s + e), NewHopeSecretKey(s=s)

    def encapsulate(self, pk: NewHopePublicKey) -> tuple[NewHopeCiphertext, np.ndarray]:
        """Return (ciphertext, shared_key_bits)."""
        key_bits = self.rng.integers(0, 2, KEY_BITS)
        r = self._noise()
        e1 = self._noise()
        e2 = self._noise()
        u = pk.a * r + e1
        v = pk.b * r + e2 + self._encode_key(key_bits)
        return NewHopeCiphertext(u=u, v=v), key_bits

    def decapsulate(self, sk: NewHopeSecretKey,
                    ct: NewHopeCiphertext) -> np.ndarray:
        """Recover the shared key bits."""
        return self._decode_key(ct.v - ct.u * sk.s)
